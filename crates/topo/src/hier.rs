//! Hierarchical AS/POP/access topologies for internet-scale sweeps.
//!
//! The paper evaluates on an 18-router ISP map and a 50-node random
//! graph; the scale experiments need Rocketfuel-flavoured hierarchy:
//! a backbone of autonomous systems, points of presence inside each AS,
//! and access routers fanning out of each POP, with end hosts attached at
//! the access tier only. [`hierarchical`] builds such a topology
//! *connected by construction* — a deterministic spanning skeleton
//! (backbone ring, POP-to-core star, access-to-POP star) plus
//! Waxman-style random shortcuts at the backbone and POP tiers — so no
//! rejection sampling is needed at 5k+ routers, unlike
//! [`crate::random::gnp_with_avg_degree`].
//!
//! Node id layout (dense, deterministic): all routers first, AS by AS
//! (core, then its POPs, then each POP's access routers), then every host
//! appended by [`attach_hosts`]. Links carry placeholder unit costs; draw
//! real costs afterwards with [`crate::costs`].

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Shape of a hierarchical topology: routers per tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierSpec {
    /// Autonomous systems (each contributes one backbone core router).
    pub ases: usize,
    /// POP routers per AS.
    pub pops_per_as: usize,
    /// Access routers per POP (hosts attach only here).
    pub access_per_pop: usize,
}

impl TierSpec {
    /// Total routers this spec produces.
    pub fn router_count(&self) -> usize {
        self.ases * (1 + self.pops_per_as * (1 + self.access_per_pop))
    }
}

/// A generated hierarchical topology with its tier membership.
#[derive(Clone, Debug)]
pub struct HierTopology {
    /// The graph (routers only until [`attach_hosts`] is called).
    pub graph: Graph,
    /// Backbone core routers, one per AS.
    pub cores: Vec<NodeId>,
    /// POP routers, grouped implicitly by AS in id order.
    pub pops: Vec<NodeId>,
    /// Access routers — the only valid host attachment points.
    pub access: Vec<NodeId>,
}

/// Waxman connection probability for two points in the unit square.
fn waxman_p(a: (f64, f64), b: (f64, f64), alpha: f64, beta: f64) -> f64 {
    let l = std::f64::consts::SQRT_2;
    let dist = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    alpha * (-dist / (beta * l)).exp()
}

/// Builds a connected AS/POP/access hierarchy (see module docs).
///
/// Deterministic per `(spec, rng state)`. All links get unit costs.
///
/// # Panics
/// Panics if any tier count is zero.
pub fn hierarchical(spec: &TierSpec, rng: &mut StdRng) -> HierTopology {
    assert!(
        spec.ases >= 1 && spec.pops_per_as >= 1 && spec.access_per_pop >= 1,
        "every tier needs at least one router"
    );
    let mut g = Graph::new();
    let mut cores = Vec::with_capacity(spec.ases);
    let mut pops = Vec::with_capacity(spec.ases * spec.pops_per_as);
    let mut access = Vec::with_capacity(spec.ases * spec.pops_per_as * spec.access_per_pop);

    for _ in 0..spec.ases {
        let core = g.add_router();
        cores.push(core);
        let as_pop_base = pops.len();
        for _ in 0..spec.pops_per_as {
            let pop = g.add_router();
            pops.push(pop);
            // Spanning skeleton: every POP hangs off its AS core.
            g.add_link(core, pop, 1, 1);
            for _ in 0..spec.access_per_pop {
                let acc = g.add_router();
                access.push(acc);
                g.add_link(pop, acc, 1, 1);
            }
        }
        // Intra-AS POP shortcuts: Waxman over positions drawn per POP.
        let as_pops = &pops[as_pop_base..];
        let pos: Vec<(f64, f64)> = as_pops
            .iter()
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        for i in 0..as_pops.len() {
            for j in (i + 1)..as_pops.len() {
                if rng.random::<f64>() < waxman_p(pos[i], pos[j], 0.7, 0.35) {
                    g.add_link(as_pops[i], as_pops[j], 1, 1);
                }
            }
        }
    }

    // Backbone: ring skeleton (guarantees inter-AS connectivity) plus
    // Waxman shortcuts between cores.
    if spec.ases >= 2 {
        for i in 0..spec.ases {
            let j = (i + 1) % spec.ases;
            if i < j && g.cost(cores[i], cores[j]).is_none() {
                g.add_link(cores[i], cores[j], 1, 1);
            }
        }
        let pos: Vec<(f64, f64)> = cores
            .iter()
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        for i in 0..spec.ases {
            for j in (i + 1)..spec.ases {
                if g.cost(cores[i], cores[j]).is_none()
                    && rng.random::<f64>() < waxman_p(pos[i], pos[j], 0.5, 0.25)
                {
                    g.add_link(cores[i], cores[j], 1, 1);
                }
            }
        }
    }

    // Redundancy: a fraction of access routers get a second uplink to
    // another POP of the same AS, so single-POP failures are survivable
    // in churn studies at scale.
    if spec.pops_per_as >= 2 {
        let per_as = spec.pops_per_as * spec.access_per_pop;
        for (ai, chunk) in access.chunks(per_as).enumerate() {
            let as_pops = &pops[ai * spec.pops_per_as..(ai + 1) * spec.pops_per_as];
            for (k, &acc) in chunk.iter().enumerate() {
                if rng.random::<f64>() < 0.2 {
                    let home = as_pops[k / spec.access_per_pop];
                    let alt = as_pops[rng.random_range(0..as_pops.len())];
                    if alt != home && g.cost(acc, alt).is_none() {
                        g.add_link(acc, alt, 1, 1);
                    }
                }
            }
        }
    }

    HierTopology {
        graph: g,
        cores,
        pops,
        access,
    }
}

/// Attaches `hosts` end hosts to the access tier, round-robin over a
/// seeded random starting permutation — every access router gets
/// `hosts / access.len()` hosts ±1, but *which* routers carry the
/// remainder varies per seed. Host ids are dense after all routers, in
/// attachment order. Returns the attached hosts.
///
/// # Panics
/// Panics if the topology has no access routers.
pub fn attach_hosts(topo: &mut HierTopology, hosts: usize, rng: &mut StdRng) -> Vec<NodeId> {
    assert!(!topo.access.is_empty(), "no access tier to attach hosts to");
    let offset = rng.random_range(0..topo.access.len());
    let mut out = Vec::with_capacity(hosts);
    for i in 0..hosts {
        let r = topo.access[(offset + i) % topo.access.len()];
        out.push(topo.graph.add_host(r, 1, 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    const SMALL: TierSpec = TierSpec {
        ases: 4,
        pops_per_as: 3,
        access_per_pop: 2,
    };

    #[test]
    fn router_count_matches_spec() {
        let t = hierarchical(&SMALL, &mut rng(1));
        assert_eq!(SMALL.router_count(), 4 * (1 + 3 * (1 + 2)));
        assert_eq!(t.graph.node_count(), SMALL.router_count());
        assert_eq!(t.cores.len(), 4);
        assert_eq!(t.pops.len(), 12);
        assert_eq!(t.access.len(), 24);
    }

    #[test]
    fn connected_by_construction() {
        for seed in 0..8 {
            let t = hierarchical(&SMALL, &mut rng(seed));
            assert!(analysis::is_connected(&t.graph), "seed {seed} disconnected");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = hierarchical(&SMALL, &mut rng(42));
        let b = hierarchical(&SMALL, &mut rng(42));
        assert_eq!(a.graph.undirected_links(), b.graph.undirected_links());
        let c = hierarchical(&SMALL, &mut rng(43));
        assert_ne!(a.graph.undirected_links(), c.graph.undirected_links());
    }

    #[test]
    fn hosts_attach_only_to_access_routers() {
        let mut t = hierarchical(&SMALL, &mut rng(3));
        let hosts = attach_hosts(&mut t, 50, &mut rng(4));
        assert_eq!(hosts.len(), 50);
        assert_eq!(t.graph.hosts().count(), 50);
        for &h in &hosts {
            assert!(t.access.contains(&t.graph.host_router(h)));
        }
        // Round-robin: per-router load is balanced within 1.
        let loads: Vec<usize> = t
            .access
            .iter()
            .map(|&a| {
                t.graph
                    .neighbors(a)
                    .iter()
                    .filter(|e| t.graph.is_host(e.to))
                    .count()
            })
            .collect();
        let (lo, hi) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        assert!(hi - lo <= 1, "unbalanced host attachment: {lo}..{hi}");
    }

    #[test]
    fn single_as_degenerates_to_pop_star() {
        let spec = TierSpec {
            ases: 1,
            pops_per_as: 2,
            access_per_pop: 2,
        };
        let t = hierarchical(&spec, &mut rng(5));
        assert!(analysis::is_connected(&t.graph));
        assert_eq!(t.graph.node_count(), 7);
    }

    #[test]
    fn scale_spec_builds_quickly_and_connected() {
        // A mid-size sanity point between the unit tests and the 5k-router
        // bench: ~500 routers.
        let spec = TierSpec {
            ases: 8,
            pops_per_as: 6,
            access_per_pop: 9,
        };
        let mut t = hierarchical(&spec, &mut rng(6));
        assert_eq!(t.graph.node_count(), spec.router_count());
        assert!(analysis::is_connected(&t.graph));
        let hosts = attach_hosts(&mut t, 1000, &mut rng(7));
        assert_eq!(hosts.len(), 1000);
        assert!(analysis::is_connected(&t.graph));
    }
}
