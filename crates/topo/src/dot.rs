//! Graphviz export: topologies and distribution trees as `.dot` text.
//!
//! Useful for eyeballing a scenario (`dot -Tpng topo.dot`) and for
//! debugging tree construction — the experiment binaries don't depend on
//! it, but the examples and the inspect tool do.

use crate::graph::{Graph, NodeId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders the topology. Routers are boxes (unicast-only ones dashed),
/// hosts are ellipses; each undirected link is one edge labelled with its
/// two directed costs `a→b / b→a`.
pub fn topology(g: &Graph) -> String {
    let mut out = String::from("graph topo {\n  node [fontsize=10];\n");
    for n in g.nodes() {
        let name = node_name(g, n);
        if g.is_router(n) {
            let style = if g.is_mcast_capable(n) {
                "solid"
            } else {
                "dashed"
            };
            let _ = writeln!(out, "  \"{name}\" [shape=box style={style}];");
        } else {
            let _ = writeln!(out, "  \"{name}\" [shape=ellipse];");
        }
    }
    for (a, b, ab, ba) in g.undirected_links() {
        let _ = writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{}/{}\"];",
            node_name(g, a),
            node_name(g, b),
            ab,
            ba
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a distribution overlay: the topology's nodes plus the given
/// directed tree links (e.g. the data-plane links a probe traversed),
/// highlighted, with per-link copy counts where > 1.
pub fn tree(g: &Graph, links: &[((NodeId, NodeId), u64)]) -> String {
    let mut out = String::from("digraph tree {\n  node [fontsize=10];\n");
    let used: BTreeSet<NodeId> = links.iter().flat_map(|&((a, b), _)| [a, b]).collect();
    for n in g.nodes() {
        let name = node_name(g, n);
        let shape = if g.is_router(n) { "box" } else { "ellipse" };
        let style = if used.contains(&n) { "bold" } else { "dotted" };
        let _ = writeln!(out, "  \"{name}\" [shape={shape} style={style}];");
    }
    for &((a, b), copies) in links {
        let label = if copies > 1 {
            format!(" [label=\"×{copies}\" color=red]")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\"{label};",
            node_name(g, a),
            node_name(g, b)
        );
    }
    out.push_str("}\n");
    out
}

fn node_name(g: &Graph, n: NodeId) -> String {
    g.label(n)
        .map(str::to_owned)
        .unwrap_or_else(|| n.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn topology_dot_contains_every_node_and_link() {
        let g = scenarios::fig2();
        let dot = topology(&g);
        assert!(dot.starts_with("graph topo {"));
        for l in ["S", "R1", "R4", "r1", "r2", "r3"] {
            assert!(dot.contains(&format!("\"{l}\"")), "missing {l}");
        }
        assert_eq!(dot.matches(" -- ").count(), g.link_count());
    }

    #[test]
    fn unicast_only_routers_render_dashed() {
        let mut g = scenarios::fig3();
        let r6 = g.node_by_label("R6").unwrap();
        g.set_mcast_capable(r6, false);
        let dot = topology(&g);
        assert!(dot.contains("\"R6\" [shape=box style=dashed]"));
    }

    #[test]
    fn tree_dot_highlights_duplicates() {
        let g = scenarios::fig3();
        let r1 = g.node_by_label("R1").unwrap();
        let r6 = g.node_by_label("R6").unwrap();
        let dot = tree(&g, &[((r1, r6), 2)]);
        assert!(dot.contains("×2"));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("\"R1\" -> \"R6\""));
    }

    #[test]
    fn tree_dot_marks_unused_nodes_dotted() {
        let g = scenarios::fig2();
        let s = g.node_by_label("S").unwrap();
        let r1 = g.node_by_label("R1").unwrap();
        let dot = tree(&g, &[((s, r1), 1)]);
        assert!(dot.contains("\"S\" [shape=box style=bold]"));
        assert!(dot.contains("\"R4\" [shape=box style=dotted]"));
    }
}
