//! Structural statistics over topologies: connectivity, degree statistics,
//! hop diameter, and link-level cost asymmetry.
//!
//! Path-level asymmetry (how often the unicast route A→B differs from B→A,
//! the quantity Paxson measured and the paper cites) depends on routing and
//! therefore lives in `hbh-routing::asymmetry`.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// True if every node can reach every other node (links are bidirectional,
/// so one BFS suffices).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.node_count();
    if n == 0 {
        return true;
    }
    reachable_from(g, NodeId(0)) == n
}

/// Number of nodes reachable from `start` (including `start`).
pub fn reachable_from(g: &Graph, start: NodeId) -> usize {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    let mut count = 0;
    while let Some(u) = queue.pop_front() {
        count += 1;
        for e in g.neighbors(u) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                queue.push_back(e.to);
            }
        }
    }
    count
}

/// Degree statistics over the router backbone (host access links excluded).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest backbone degree.
    pub min: usize,
    /// Largest backbone degree.
    pub max: usize,
    /// Mean backbone degree.
    pub mean: f64,
}

/// Backbone degree statistics (routers only, counting only router–router
/// links). Returns `None` for a graph without routers.
pub fn backbone_degree_stats(g: &Graph) -> Option<DegreeStats> {
    let degrees: Vec<usize> = g
        .routers()
        .map(|r| g.neighbors(r).iter().filter(|e| g.is_router(e.to)).count())
        .collect();
    if degrees.is_empty() {
        return None;
    }
    Some(DegreeStats {
        min: *degrees.iter().min().unwrap(),
        max: *degrees.iter().max().unwrap(),
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
    })
}

/// Hop-count diameter (ignores costs; `None` if disconnected or empty).
pub fn hop_diameter(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut diameter = 0;
    for s in g.nodes() {
        let mut dist = vec![usize::MAX; n];
        dist[s.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        let mut reached = 0;
        while let Some(u) = queue.pop_front() {
            reached += 1;
            for e in g.neighbors(u) {
                if dist[e.to.index()] == usize::MAX {
                    dist[e.to.index()] = dist[u.index()] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        if reached < n {
            return None;
        }
        diameter = diameter.max(*dist.iter().max().unwrap());
    }
    Some(diameter)
}

/// Fraction of undirected links whose two directed costs differ.
///
/// With the paper's independent `U[1,10]` draws this is 0.9 in expectation.
pub fn link_cost_asymmetry(g: &Graph) -> f64 {
    let links = g.undirected_links();
    if links.is_empty() {
        return 0.0;
    }
    let asym = links.iter().filter(|(_, _, ab, ba)| ab != ba).count();
    asym as f64 / links.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| g.add_router()).collect();
        for w in nodes.windows(2) {
            g.add_link(w[0], w[1], 1, 1);
        }
        g
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new()));
    }

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&path_graph(5)));
    }

    #[test]
    fn disjoint_routers_are_disconnected() {
        let mut g = Graph::new();
        g.add_router();
        g.add_router();
        assert!(!is_connected(&g));
        assert_eq!(reachable_from(&g, NodeId(0)), 1);
    }

    #[test]
    fn hop_diameter_of_path() {
        assert_eq!(hop_diameter(&path_graph(5)), Some(4));
    }

    #[test]
    fn hop_diameter_of_disconnected_is_none() {
        let mut g = Graph::new();
        g.add_router();
        g.add_router();
        assert_eq!(hop_diameter(&g), None);
    }

    #[test]
    fn hop_diameter_of_single_node() {
        let mut g = Graph::new();
        g.add_router();
        assert_eq!(hop_diameter(&g), Some(0));
    }

    #[test]
    fn degree_stats_ignore_hosts() {
        let mut g = path_graph(3);
        let r0 = NodeId(0);
        g.add_host(r0, 1, 1);
        let stats = backbone_degree_stats(&g).unwrap();
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 2);
        assert!((stats.mean - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn degree_stats_of_hostless_empty_graph() {
        assert_eq!(backbone_degree_stats(&Graph::new()), None);
    }

    #[test]
    fn asymmetry_of_symmetric_graph_is_zero() {
        assert_eq!(link_cost_asymmetry(&path_graph(4)), 0.0);
    }

    #[test]
    fn asymmetry_counts_differing_links() {
        let mut g = path_graph(3);
        g.set_cost(NodeId(0), NodeId(1), 9);
        assert!((link_cost_asymmetry(&g) - 0.5).abs() < 1e-9);
    }
}
