//! The core topology structure: nodes (routers and hosts) connected by
//! point-to-point links with independent costs in each direction.
//!
//! Links are stored as directed half-links; [`Graph::add_link`] always
//! inserts both directions so the physical topology stays bidirectional,
//! which is what the paper assumes (asymmetry lives in the *costs*, not in
//! connectivity).

use std::fmt;

/// Identifier of a node (router or host). Dense, index-like.
///
/// Node ids index into internal vectors, so they are assigned contiguously
/// by [`Graph::add_router`] / [`Graph::add_host`] in insertion order. The
/// paper's figures use the same convention (ISP topology: routers `0..18`,
/// hosts `18..36`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index of this node in the graph's dense node storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Cost of traversing a link in one direction.
///
/// The paper draws these uniformly from `[1, 10]` and uses them both as the
/// routing metric and as the link transit delay ("time units"), so a single
/// integer type serves both purposes. Accumulated path costs use
/// [`PathCost`] (`u64`) to rule out overflow on long paths.
pub type Cost = u32;

/// Accumulated cost/delay along a path.
pub type PathCost = u64;

/// Identifier of a *directed* half-link: `(from, to)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId {
    /// Transmitting end.
    pub from: NodeId,
    /// Receiving end.
    pub to: NodeId,
}

impl LinkId {
    /// The directed half-link `from → to`.
    pub fn new(from: NodeId, to: NodeId) -> Self {
        LinkId { from, to }
    }

    /// The same physical link traversed in the opposite direction.
    pub fn reversed(self) -> Self {
        LinkId {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// What kind of device a node is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// A router: forwards packets, may run a multicast routing protocol.
    Router,
    /// An end host: sources or sinks traffic, never transits packets.
    Host,
}

/// Per-node record.
#[derive(Clone, Debug)]
pub struct Node {
    /// Router or host.
    pub kind: NodeKind,
    /// Whether this node runs the multicast routing protocol under test.
    ///
    /// The paper's experiments set this `true` for every router ("all
    /// routers implement the multicast service in our experiments") but the
    /// protocols are explicitly designed to traverse `false` routers
    /// (unicast-only clouds); the `unicast_clouds` ablation exercises that.
    pub mcast_capable: bool,
    /// Optional human-readable label used by the scenario topologies
    /// (`"S"`, `"R3"`, `"r1"`, ...).
    pub label: Option<String>,
}

/// Bandwidth of a link direction (abstract units; `u32::MAX` = unlimited).
pub type Bandwidth = u32;

/// Dense identifier of a *directed* half-link.
///
/// Edge ids are assigned contiguously in link-insertion order (each
/// [`Graph::add_link`] consumes two: `a→b` then `b→a`) and index directly
/// into per-edge arrays — the simulator's per-packet accounting keys its
/// counters by `EdgeId` so a packet hop is a single array increment instead
/// of an ordered-map insertion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The index of this edge in the graph's dense edge storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed out-edge in the adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutEdge {
    /// The neighbor this edge leads to.
    pub to: NodeId,
    /// Cost of traversing the edge in this direction.
    pub cost: Cost,
    /// Available bandwidth in this direction (QoS extension; defaults to
    /// unlimited and is ignored unless bandwidth-constrained routing is
    /// used).
    pub bandwidth: Bandwidth,
    /// This edge's slot in the graph's dense edge index.
    pub eid: EdgeId,
}

/// The network topology: a set of routers and hosts connected by
/// bidirectional links with per-direction costs.
///
/// ```
/// use hbh_topo::graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_router();
/// let b = g.add_router();
/// g.add_link(a, b, 3, 7); // cost a→b = 3, b→a = 7 (asymmetric)
/// let host = g.add_host(a, 1, 1);
///
/// assert_eq!(g.cost(a, b), Some(3));
/// assert_eq!(g.cost(b, a), Some(7));
/// assert_eq!(g.host_router(host), a);
/// ```
///
/// Invariants maintained by the mutation API:
///
/// * every link is bidirectional (both half-links present);
/// * hosts are single-homed: exactly one link, to a router;
/// * no self-loops, no parallel links;
/// * all costs are ≥ 1 (a zero cost would make "delay" degenerate and can
///   produce zero-cost cycles in path enumeration).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    adj: Vec<Vec<OutEdge>>,
    /// Dense edge index: endpoints of each directed half-link, in
    /// insertion order. `edge_ends[e]` is the `LinkId` of `EdgeId(e)`.
    edge_ends: Vec<LinkId>,
    /// `edge_costs[e]` mirrors the cost stored on the adjacency entry for
    /// `EdgeId(e)`; kept in sync by [`Graph::set_cost`].
    edge_costs: Vec<Cost>,
}

impl Graph {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Graph::default()
    }

    fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.adj.push(Vec::new());
        id
    }

    /// Adds a multicast-capable router.
    pub fn add_router(&mut self) -> NodeId {
        self.add_node(Node {
            kind: NodeKind::Router,
            mcast_capable: true,
            label: None,
        })
    }

    /// Adds a router with a human-readable label (used by the paper-figure
    /// scenario topologies).
    pub fn add_router_labeled(&mut self, label: &str) -> NodeId {
        self.add_node(Node {
            kind: NodeKind::Router,
            mcast_capable: true,
            label: Some(label.to_owned()),
        })
    }

    /// Adds a host and single-homes it to `router` with the given access
    /// costs (one per direction).
    ///
    /// # Panics
    /// Panics if `router` is not a router, or a cost is zero.
    pub fn add_host(&mut self, router: NodeId, cost_to_host: Cost, cost_to_router: Cost) -> NodeId {
        assert_eq!(
            self.kind(router),
            NodeKind::Router,
            "hosts attach to routers"
        );
        let host = self.add_node(Node {
            kind: NodeKind::Host,
            mcast_capable: false,
            label: None,
        });
        self.add_link(router, host, cost_to_host, cost_to_router);
        host
    }

    /// [`Graph::add_host`] with a label.
    pub fn add_host_labeled(
        &mut self,
        router: NodeId,
        cost_to_host: Cost,
        cost_to_router: Cost,
        label: &str,
    ) -> NodeId {
        let host = self.add_host(router, cost_to_host, cost_to_router);
        self.nodes[host.index()].label = Some(label.to_owned());
        host
    }

    /// Adds a bidirectional link `a — b` with directed costs
    /// `cost(a→b) = ab` and `cost(b→a) = ba`.
    ///
    /// # Panics
    /// Panics on self-loops, duplicate links, zero costs, or an attempt to
    /// multi-home a host.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, ab: Cost, ba: Cost) {
        assert_ne!(a, b, "self-loop {a}");
        assert!(ab >= 1 && ba >= 1, "link costs must be >= 1");
        assert!(self.cost(a, b).is_none(), "duplicate link {a}-{b}");
        for n in [a, b] {
            if self.kind(n) == NodeKind::Host {
                assert!(
                    self.adj[n.index()].is_empty(),
                    "host {n} must be single-homed"
                );
            }
        }
        self.push_half(a, b, ab);
        self.push_half(b, a, ba);
    }

    /// Appends the directed half-link `from → to`, registering it in the
    /// dense edge index.
    fn push_half(&mut self, from: NodeId, to: NodeId, cost: Cost) {
        let eid = EdgeId(self.edge_ends.len() as u32);
        self.edge_ends.push(LinkId::new(from, to));
        self.edge_costs.push(cost);
        self.adj[from.index()].push(OutEdge {
            to,
            cost,
            bandwidth: Bandwidth::MAX,
            eid,
        });
    }

    /// Crate-internal escape hatch for scenario builders that need to attach
    /// a host to a *second* router (the paper's Figure 2 draws `r1`/`r2`
    /// with one upstream router per direction of their asymmetric routes).
    /// Bypasses the single-homing assertion but keeps every other invariant.
    /// Hosts still never transit traffic — routing enforces that separately.
    pub(crate) fn push_raw_link(&mut self, a: NodeId, b: NodeId, ab: Cost, ba: Cost) {
        assert_ne!(a, b, "self-loop {a}");
        assert!(ab >= 1 && ba >= 1, "link costs must be >= 1");
        assert!(self.cost(a, b).is_none(), "duplicate link {a}-{b}");
        self.push_half(a, b, ab);
        self.push_half(b, a, ba);
    }

    /// Overwrites the cost of the directed half-link `from → to`.
    ///
    /// # Panics
    /// Panics if the link does not exist or `cost` is zero.
    pub fn set_cost(&mut self, from: NodeId, to: NodeId, cost: Cost) {
        assert!(cost >= 1, "link costs must be >= 1");
        let e = self.adj[from.index()]
            .iter_mut()
            .find(|e| e.to == to)
            .unwrap_or_else(|| panic!("no link {from}->{to}"));
        e.cost = cost;
        self.edge_costs[e.eid.index()] = cost;
    }

    /// Sets the bandwidth of the directed half-link `from → to` (QoS
    /// extension).
    ///
    /// # Panics
    /// Panics if the link does not exist or `bw` is zero.
    pub fn set_bandwidth(&mut self, from: NodeId, to: NodeId, bw: Bandwidth) {
        assert!(bw >= 1, "bandwidth must be >= 1");
        let e = self.adj[from.index()]
            .iter_mut()
            .find(|e| e.to == to)
            .unwrap_or_else(|| panic!("no link {from}->{to}"));
        e.bandwidth = bw;
    }

    /// Bandwidth of the directed half-link `from → to`, if it exists.
    pub fn bandwidth(&self, from: NodeId, to: NodeId) -> Option<Bandwidth> {
        self.adj[from.index()]
            .iter()
            .find(|e| e.to == to)
            .map(|e| e.bandwidth)
    }

    /// Marks a router as unicast-only (it forwards data but cannot hold
    /// multicast protocol state, i.e. cannot be a branching node).
    pub fn set_mcast_capable(&mut self, n: NodeId, capable: bool) {
        assert_eq!(
            self.kind(n),
            NodeKind::Router,
            "capability applies to routers"
        );
        self.nodes[n.index()].mcast_capable = capable;
    }

    // --- accessors ---------------------------------------------------------

    /// Number of nodes (routers + hosts).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *undirected* links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Router or host?
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// True if `n` is a router.
    pub fn is_router(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::Router
    }

    /// True if `n` is a host.
    pub fn is_host(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::Host
    }

    /// True if `n` may hold multicast protocol state.
    pub fn is_mcast_capable(&self, n: NodeId) -> bool {
        self.nodes[n.index()].mcast_capable
    }

    /// The scenario label of `n`, if any.
    pub fn label(&self, n: NodeId) -> Option<&str> {
        self.nodes[n.index()].label.as_deref()
    }

    /// Resolves a scenario label back to its node.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        (0..self.nodes.len())
            .map(|i| NodeId(i as u32))
            .find(|&n| self.label(n) == Some(label))
    }

    /// All node ids, in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All routers.
    pub fn routers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.is_router(n))
    }

    /// All hosts.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.is_host(n))
    }

    /// Out-edges of `n`.
    pub fn neighbors(&self, n: NodeId) -> &[OutEdge] {
        &self.adj[n.index()]
    }

    /// Degree of `n` (number of attached links).
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Cost of the directed half-link `from → to`, if the link exists.
    pub fn cost(&self, from: NodeId, to: NodeId) -> Option<Cost> {
        self.adj[from.index()]
            .iter()
            .find(|e| e.to == to)
            .map(|e| e.cost)
    }

    // --- dense edge index --------------------------------------------------

    /// Number of directed half-links (twice [`Graph::link_count`]).
    pub fn directed_edge_count(&self) -> usize {
        self.edge_ends.len()
    }

    /// Endpoints of each directed half-link, indexed by [`EdgeId`].
    pub fn edge_ends_all(&self) -> &[LinkId] {
        &self.edge_ends
    }

    /// Endpoints of the directed half-link `eid`.
    pub fn edge_ends(&self, eid: EdgeId) -> LinkId {
        self.edge_ends[eid.index()]
    }

    /// Cost of the directed half-link `eid`.
    pub fn edge_cost(&self, eid: EdgeId) -> Cost {
        self.edge_costs[eid.index()]
    }

    /// Edge id and cost of the directed half-link `from → to`, if the link
    /// exists. One adjacency scan resolves both, which is what the
    /// simulator's per-packet hot path needs.
    pub fn edge_entry(&self, from: NodeId, to: NodeId) -> Option<(EdgeId, Cost)> {
        self.adj[from.index()]
            .iter()
            .find(|e| e.to == to)
            .map(|e| (e.eid, e.cost))
    }

    /// The largest per-direction link cost in the topology (0 for an empty
    /// graph). Used to derive convergence/probe horizons from the actual
    /// cost distribution instead of hard-coding the scenario generator's
    /// `[1, 10]` draw range.
    pub fn max_link_cost(&self) -> Cost {
        self.edge_costs.iter().copied().max().unwrap_or(0)
    }

    /// The router a host is attached to.
    ///
    /// # Panics
    /// Panics if `host` is not a host.
    pub fn host_router(&self, host: NodeId) -> NodeId {
        assert_eq!(self.kind(host), NodeKind::Host, "{host} is not a host");
        self.adj[host.index()][0].to
    }

    /// All directed half-links, as `(LinkId, cost)`.
    pub fn directed_links(&self) -> impl Iterator<Item = (LinkId, Cost)> + '_ {
        self.nodes().flat_map(move |from| {
            self.adj[from.index()]
                .iter()
                .map(move |e| (LinkId::new(from, e.to), e.cost))
        })
    }

    /// All undirected links, each reported once with both directed costs
    /// `(a, b, cost(a→b), cost(b→a))`, with `a < b`.
    pub fn undirected_links(&self) -> Vec<(NodeId, NodeId, Cost, Cost)> {
        let mut out = Vec::with_capacity(self.link_count());
        for (l, c) in self.directed_links() {
            if l.from < l.to {
                let back = self.cost(l.to, l.from).expect("links are bidirectional");
                out.push((l.from, l.to, c, back));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_routers() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 3, 7);
        (g, a, b)
    }

    #[test]
    fn node_ids_are_dense_and_ordered() {
        let mut g = Graph::new();
        assert_eq!(g.add_router(), NodeId(0));
        assert_eq!(g.add_router(), NodeId(1));
        let h = g.add_host(NodeId(0), 1, 1);
        assert_eq!(h, NodeId(2));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn links_are_bidirectional_with_independent_costs() {
        let (g, a, b) = two_routers();
        assert_eq!(g.cost(a, b), Some(3));
        assert_eq!(g.cost(b, a), Some(7));
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn cost_of_missing_link_is_none() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        assert_eq!(g.cost(a, b), None);
    }

    #[test]
    fn set_cost_changes_one_direction_only() {
        let (mut g, a, b) = two_routers();
        g.set_cost(a, b, 9);
        assert_eq!(g.cost(a, b), Some(9));
        assert_eq!(g.cost(b, a), Some(7));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        let a = g.add_router();
        g.add_link(a, a, 1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_links_rejected() {
        let (mut g, a, b) = two_routers();
        g.add_link(a, b, 1, 1);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_cost_rejected() {
        let (mut g, a, b) = two_routers();
        let _ = (a, b);
        let c = g.add_router();
        g.add_link(a, c, 0, 1);
    }

    #[test]
    #[should_panic(expected = "single-homed")]
    fn hosts_cannot_be_multihomed() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let h = g.add_host(a, 1, 1);
        g.add_link(h, b, 1, 1);
    }

    #[test]
    fn host_router_resolves_attachment() {
        let mut g = Graph::new();
        let a = g.add_router();
        let h = g.add_host(a, 2, 5);
        assert_eq!(g.host_router(h), a);
        assert_eq!(g.cost(a, h), Some(2));
        assert_eq!(g.cost(h, a), Some(5));
    }

    #[test]
    fn hosts_are_not_mcast_capable() {
        let mut g = Graph::new();
        let a = g.add_router();
        let h = g.add_host(a, 1, 1);
        assert!(g.is_mcast_capable(a));
        assert!(!g.is_mcast_capable(h));
    }

    #[test]
    fn router_can_be_made_unicast_only() {
        let mut g = Graph::new();
        let a = g.add_router();
        g.set_mcast_capable(a, false);
        assert!(!g.is_mcast_capable(a));
        assert!(g.is_router(a));
    }

    #[test]
    fn labels_resolve_back_to_nodes() {
        let mut g = Graph::new();
        let s = g.add_router_labeled("S");
        let r = g.add_host_labeled(s, 1, 1, "r1");
        assert_eq!(g.node_by_label("S"), Some(s));
        assert_eq!(g.node_by_label("r1"), Some(r));
        assert_eq!(g.node_by_label("nope"), None);
    }

    #[test]
    fn undirected_links_report_each_link_once() {
        let (g, a, b) = two_routers();
        assert_eq!(g.undirected_links(), vec![(a, b, 3, 7)]);
    }

    #[test]
    fn directed_links_report_both_halves() {
        let (g, _, _) = two_routers();
        assert_eq!(g.directed_links().count(), 2);
    }

    #[test]
    fn degree_counts_attached_links() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 1, 1);
        g.add_link(a, c, 1, 1);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 1);
    }

    #[test]
    fn edge_index_tracks_insertion_order() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 3, 7);
        g.add_link(b, c, 2, 4);
        assert_eq!(g.directed_edge_count(), 4);
        assert_eq!(g.edge_ends(EdgeId(0)), LinkId::new(a, b));
        assert_eq!(g.edge_ends(EdgeId(1)), LinkId::new(b, a));
        assert_eq!(g.edge_ends(EdgeId(2)), LinkId::new(b, c));
        assert_eq!(g.edge_ends(EdgeId(3)), LinkId::new(c, b));
        assert_eq!(g.edge_cost(EdgeId(1)), 7);
        assert_eq!(g.edge_entry(b, c), Some((EdgeId(2), 2)));
        assert_eq!(g.edge_entry(a, c), None);
    }

    #[test]
    fn edge_index_agrees_with_adjacency() {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        g.add_link(a, b, 3, 7);
        let h = g.add_host(a, 1, 2);
        let _ = h;
        for (l, cost) in g.directed_links() {
            let (eid, c2) = g.edge_entry(l.from, l.to).expect("edge present");
            assert_eq!(c2, cost);
            assert_eq!(g.edge_ends(eid), l);
            assert_eq!(g.edge_cost(eid), cost);
        }
        assert_eq!(g.directed_edge_count(), g.link_count() * 2);
    }

    #[test]
    fn set_cost_keeps_edge_index_in_sync() {
        let (mut g, a, b) = two_routers();
        let (eid, _) = g.edge_entry(a, b).unwrap();
        g.set_cost(a, b, 9);
        assert_eq!(g.edge_cost(eid), 9);
        assert_eq!(g.max_link_cost(), 9);
    }

    #[test]
    fn max_link_cost_of_empty_graph_is_zero() {
        assert_eq!(Graph::new().max_link_cost(), 0);
    }

    #[test]
    fn link_id_reversal() {
        let l = LinkId::new(NodeId(1), NodeId(2));
        assert_eq!(l.reversed(), LinkId::new(NodeId(2), NodeId(1)));
        assert_eq!(l.reversed().reversed(), l);
    }
}
