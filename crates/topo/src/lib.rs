#![warn(missing_docs)]

//! # hbh-topo — topology substrate for the HBH multicast simulator
//!
//! This crate models the physical network the multicast routing protocols run
//! over: routers, hosts, and point-to-point links with **per-direction**
//! integer costs. Per-direction costs are the root cause studied by the HBH
//! paper (Costa, Fdida, Duarte, SIGCOMM 2001): when `cost(u → v) ≠
//! cost(v → u)`, unicast shortest paths become asymmetric and reverse-path
//! multicast trees stop being shortest-path trees.
//!
//! The crate provides:
//!
//! * [`graph::Graph`] — the mutable topology structure (routers, hosts,
//!   directed link costs, multicast capability flags);
//! * [`isp`] — the 18-router "large ISP" backbone of the paper's Figure 6;
//! * [`random`] — seeded random-graph generators (G(n,p) with a target
//!   average degree, plus Waxman for extensions);
//! * [`hier`] — hierarchical AS/POP/access topologies for the scale sweeps
//!   (connected by construction, thousands of routers);
//! * [`csr`] — an immutable CSR packing of a frozen graph, the form the
//!   routing layer's SPF sweeps iterate over;
//! * [`costs`] — cost assignment policies (the paper's per-direction
//!   `U[1,10]`, and an asymmetry-interpolation knob used by the ablations);
//! * [`scenarios`] — the small hand-built topologies of the paper's
//!   Figures 1, 2/5 and 3, with directed costs chosen so the unicast routes
//!   match the routes the paper's walk-throughs assume;
//! * [`analysis`] — structural statistics (degree, connectivity, diameter,
//!   link-cost asymmetry).
//!
//! Everything is deterministic given an explicit [`rand::rngs::StdRng`] seed;
//! no global RNG state is ever consulted.

pub mod analysis;
pub mod costs;
pub mod csr;
pub mod dot;
pub mod graph;
pub mod hier;
pub mod isp;
pub mod random;
pub mod scenarios;

pub use csr::{Csr, CsrEdge};
pub use graph::{Cost, EdgeId, Graph, LinkId, NodeId, NodeKind};
