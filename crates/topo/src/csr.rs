//! Compressed-sparse-row (CSR) packing of a frozen [`Graph`].
//!
//! [`Graph`] stores adjacency as one `Vec<OutEdge>` per node — convenient
//! to mutate, but every node's out-edges are a separate heap allocation,
//! so an all-pairs or per-source Dijkstra sweep chases `n` pointers and
//! the 16-byte `OutEdge` entries drag the unused bandwidth field through
//! the cache. [`Csr`] repacks the same adjacency into four contiguous
//! arrays indexed by one offset table: iteration over a node's out-edges
//! is a pure slice walk over `u32`s, and the whole structure is immutable —
//! the form the routing layer wants for 10k-router topologies.
//!
//! Edge *order is preserved exactly* (per-node insertion order, nodes in
//! id order), so a Dijkstra run over the CSR view relaxes edges in the
//! same sequence as one over the `Graph` adjacency and produces identical
//! routes and tie-breaks. The regression tests pin this.

use crate::graph::{Cost, EdgeId, Graph, LinkId, NodeId};

/// An immutable CSR view of a [`Graph`]'s directed adjacency.
///
/// Built once per frozen topology ([`Csr::from_graph`]); all arrays use
/// dense `u32` indices. `offsets` has `n + 1` entries; the out-edges of
/// node `u` occupy slots `offsets[u] .. offsets[u + 1]` of the parallel
/// `to` / `cost` / `eid` arrays.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Slot range per node: `offsets[u]..offsets[u+1]`.
    offsets: Vec<u32>,
    /// Neighbor node id per slot.
    to: Vec<u32>,
    /// Directed link cost per slot.
    cost: Vec<Cost>,
    /// Dense edge id per slot (indexes fault masks and edge counters).
    eid: Vec<u32>,
    /// `host[n]`: node `n` is an end host (never transits traffic).
    host: Vec<bool>,
    /// Endpoints of each directed half-link, indexed by [`EdgeId`]
    /// (mirrors [`Graph::edge_ends_all`]; lets mask-based consumers map an
    /// edge id back to its endpoints without the originating graph).
    edge_ends: Vec<LinkId>,
}

/// One packed out-edge, yielded by [`Csr::neighbors`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrEdge {
    /// The neighbor this edge leads to.
    pub to: NodeId,
    /// Cost of traversing the edge in this direction.
    pub cost: Cost,
    /// The edge's dense id.
    pub eid: EdgeId,
}

impl Csr {
    /// Packs the current adjacency of `g`. Edge order per node — and hence
    /// every Dijkstra tie-break downstream — is preserved.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let m = g.directed_edge_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut to = Vec::with_capacity(m);
        let mut cost = Vec::with_capacity(m);
        let mut eid = Vec::with_capacity(m);
        let mut host = Vec::with_capacity(n);
        offsets.push(0);
        for u in g.nodes() {
            for e in g.neighbors(u) {
                to.push(e.to.0);
                cost.push(e.cost);
                eid.push(e.eid.0);
            }
            offsets.push(to.len() as u32);
            host.push(g.is_host(u));
        }
        Csr {
            offsets,
            to,
            cost,
            eid,
            host,
            edge_ends: g.edge_ends_all().to_vec(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed half-links.
    #[inline]
    pub fn directed_edge_count(&self) -> usize {
        self.to.len()
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        (self.offsets[n.index() + 1] - self.offsets[n.index()]) as usize
    }

    /// True if `n` is an end host.
    #[inline]
    pub fn is_host(&self, n: NodeId) -> bool {
        self.host[n.index()]
    }

    /// Endpoints of the directed half-link `eid`.
    #[inline]
    pub fn edge_ends(&self, eid: EdgeId) -> LinkId {
        self.edge_ends[eid.index()]
    }

    /// The slot range of `n`'s out-edges in the packed arrays.
    #[inline]
    fn range(&self, n: NodeId) -> std::ops::Range<usize> {
        self.offsets[n.index()] as usize..self.offsets[n.index() + 1] as usize
    }

    /// Out-edges of `n`, in the same order as [`Graph::neighbors`].
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = CsrEdge> + '_ {
        let r = self.range(n);
        self.to[r.clone()]
            .iter()
            .zip(&self.cost[r.clone()])
            .zip(&self.eid[r])
            .map(|((&to, &cost), &eid)| CsrEdge {
                to: NodeId(to),
                cost,
                eid: EdgeId(eid),
            })
    }

    /// Raw packed slices `(to, cost, eid)` of `n`'s out-edges, for hot
    /// loops that want to drive the iteration themselves.
    #[inline]
    pub fn out_slices(&self, n: NodeId) -> (&[u32], &[Cost], &[u32]) {
        let r = self.range(n);
        (&self.to[r.clone()], &self.cost[r.clone()], &self.eid[r])
    }

    /// Heap bytes held by the packed arrays (the CSR memory footprint).
    pub fn bytes(&self) -> usize {
        self.offsets.len() * size_of::<u32>()
            + self.to.len() * size_of::<u32>()
            + self.cost.len() * size_of::<Cost>()
            + self.eid.len() * size_of::<u32>()
            + self.host.len() * size_of::<bool>()
            + self.edge_ends.len() * size_of::<LinkId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_router();
        let b = g.add_router();
        let c = g.add_router();
        g.add_link(a, b, 3, 7);
        g.add_link(a, c, 2, 4);
        g.add_host(b, 1, 5);
        g
    }

    #[test]
    fn csr_mirrors_adjacency_exactly() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.directed_edge_count(), g.directed_edge_count());
        for u in g.nodes() {
            assert_eq!(csr.out_degree(u), g.degree(u));
            assert_eq!(csr.is_host(u), g.is_host(u));
            let packed: Vec<CsrEdge> = csr.neighbors(u).collect();
            let adj = g.neighbors(u);
            assert_eq!(packed.len(), adj.len());
            for (p, e) in packed.iter().zip(adj) {
                assert_eq!(p.to, e.to, "order must match adjacency");
                assert_eq!(p.cost, e.cost);
                assert_eq!(p.eid, e.eid);
            }
        }
    }

    #[test]
    fn edge_ends_round_trip() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        for (l, _) in g.directed_links() {
            let (eid, _) = g.edge_entry(l.from, l.to).unwrap();
            assert_eq!(csr.edge_ends(eid), l);
        }
    }

    #[test]
    fn out_slices_agree_with_iterator() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        for u in g.nodes() {
            let (to, cost, eid) = csr.out_slices(u);
            let via_iter: Vec<CsrEdge> = csr.neighbors(u).collect();
            assert_eq!(to.len(), via_iter.len());
            for (i, e) in via_iter.iter().enumerate() {
                assert_eq!((to[i], cost[i], eid[i]), (e.to.0, e.cost, e.eid.0));
            }
        }
    }

    #[test]
    fn bytes_counts_packed_arrays() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        assert!(csr.bytes() > 0);
        // 4 nodes -> 5 offsets; 3 undirected links -> 6 slots.
        assert_eq!(csr.bytes(), 5 * 4 + 6 * 4 + 6 * 4 + 6 * 4 + 4 + 6 * 8);
    }

    #[test]
    fn empty_graph_packs() {
        let csr = Csr::from_graph(&Graph::new());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.directed_edge_count(), 0);
    }
}
