//! The 18-router "large ISP" backbone of the paper's Figure 6.
//!
//! The paper takes this topology from Apostolopoulos et al. (SIGCOMM'98,
//! "Quality of service based routing: a performance perspective"), where it
//! is described as "typical of a large ISP's network": 18 backbone routers
//! with average connectivity ≈ 3.3, i.e. 30 bidirectional links. The
//! original adjacency is only published as a drawing, so this module
//! reconstructs an 18-router, 30-link backbone with the same node count,
//! the same average degree (3.33), degrees between 2 and 5, and the same
//! host layout: one potential receiver host per router, hosts numbered
//! `18..36` with host `18 + i` attached to router `i`. The paper fixes
//! **node 18** (the host on router 0) as the multicast source.
//!
//! This substitution is recorded in `DESIGN.md` §5; the evaluation results
//! depend on the degree/diameter statistics rather than the precise
//! adjacency, which is why the reconstruction pins those statistics.

use crate::graph::{Graph, NodeId};

/// Number of routers in the ISP backbone.
pub const ROUTERS: usize = 18;

/// Number of hosts (one per router).
pub const HOSTS: usize = 18;

/// The node id of the paper's fixed multicast source (host 18, on router 0).
pub const SOURCE_HOST: NodeId = NodeId(18);

/// The 30 undirected backbone links.
///
/// Degrees: min 2, max 5, average 30·2/18 = 3.33 — matching the "3.3
/// connectivity" quoted in §4.1 of the paper.
pub const BACKBONE_LINKS: [(u32, u32); 30] = [
    (0, 1),
    (0, 2),
    (0, 5),
    (1, 2),
    (1, 3),
    (2, 5),
    (2, 4),
    (3, 4),
    (3, 6),
    (4, 5),
    (4, 7),
    (4, 8),
    (5, 9),
    (6, 7),
    (6, 11),
    (7, 8),
    (7, 12),
    (8, 9),
    (8, 13),
    (9, 10),
    (10, 13),
    (10, 17),
    (11, 12),
    (11, 14),
    (12, 13),
    (12, 15),
    (13, 16),
    (14, 15),
    (15, 16),
    (16, 17),
];

/// Builds the ISP topology with *placeholder* unit costs on every link.
///
/// Experiments re-draw the directed costs per run with
/// [`crate::costs::assign_uniform`], reproducing the paper's "integer
/// randomly chosen in the interval `[1, 10]`" per direction.
pub fn isp_topology() -> Graph {
    let mut g = Graph::new();
    let routers: Vec<NodeId> = (0..ROUTERS).map(|_| g.add_router()).collect();
    for &(a, b) in &BACKBONE_LINKS {
        g.add_link(routers[a as usize], routers[b as usize], 1, 1);
    }
    // Hosts 18..36: host 18 + i attaches to router i.
    for &r in &routers {
        g.add_host(r, 1, 1);
    }
    g
}

/// All hosts that may join the channel (every host except the source).
pub fn receiver_pool(g: &Graph) -> Vec<NodeId> {
    g.hosts().filter(|&h| h != SOURCE_HOST).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn has_paper_node_layout() {
        let g = isp_topology();
        assert_eq!(g.node_count(), 36);
        assert_eq!(g.routers().count(), 18);
        assert_eq!(g.hosts().count(), 18);
        // Routers occupy ids 0..18, hosts 18..36 (paper's Figure 6 numbering).
        assert!(g.is_router(NodeId(0)) && g.is_router(NodeId(17)));
        assert!(g.is_host(NodeId(18)) && g.is_host(NodeId(35)));
    }

    #[test]
    fn source_host_is_node_18_on_router_0() {
        let g = isp_topology();
        assert!(g.is_host(SOURCE_HOST));
        assert_eq!(g.host_router(SOURCE_HOST), NodeId(0));
    }

    #[test]
    fn hosts_attach_in_order() {
        let g = isp_topology();
        for i in 0..18u32 {
            assert_eq!(g.host_router(NodeId(18 + i)), NodeId(i));
        }
    }

    #[test]
    fn backbone_has_30_links_and_avg_degree_3_33() {
        let g = isp_topology();
        // 30 backbone + 18 access links.
        assert_eq!(g.link_count(), 48);
        let backbone_degree_sum: usize = g
            .routers()
            .map(|r| g.neighbors(r).iter().filter(|e| g.is_router(e.to)).count())
            .sum();
        assert_eq!(backbone_degree_sum, 60); // 2 × 30 links
        let avg = backbone_degree_sum as f64 / 18.0;
        assert!((avg - 3.33).abs() < 0.01, "avg backbone degree {avg}");
    }

    #[test]
    fn backbone_degrees_bounded() {
        let g = isp_topology();
        for r in g.routers() {
            let d = g.neighbors(r).iter().filter(|e| g.is_router(e.to)).count();
            assert!((2..=5).contains(&d), "router {r} backbone degree {d}");
        }
    }

    #[test]
    fn is_connected() {
        let g = isp_topology();
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn link_table_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &BACKBONE_LINKS {
            assert!(a < b, "links listed with a < b");
            assert!(seen.insert((a, b)), "duplicate link ({a},{b})");
        }
    }

    #[test]
    fn receiver_pool_excludes_source() {
        let g = isp_topology();
        let pool = receiver_pool(&g);
        assert_eq!(pool.len(), 17);
        assert!(!pool.contains(&SOURCE_HOST));
    }
}
