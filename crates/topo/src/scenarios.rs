//! Hand-built topologies reproducing the paper's walk-through figures.
//!
//! Each builder returns a [`Graph`] whose nodes carry the labels used in the
//! paper ("S", "R1"/"H1", "r1", ...) and whose *directed* costs are chosen
//! so that the unicast shortest paths are exactly the routes the paper's
//! examples assume. `1` marks a direction on a wanted route, `10` (or `5`)
//! blocks an unwanted alternative; uniqueness of the resulting shortest
//! paths is asserted by the integration tests (they need Dijkstra, which
//! lives upstream in `hbh-routing`).

use crate::graph::Graph;

/// Cost used to block a direction that must not be on any shortest path.
const BLOCK: u32 = 10;

/// Figure 1: the 8-receiver example tree used to illustrate recursive
/// unicast distribution (and reused by Figure 4 for the member-departure
/// comparison).
///
/// Structure (symmetric unit costs; a tree, so all routes are forced):
///
/// ```text
///                S
///                |
///                H1
///               /  \
///             H2    H3
///             |      |
///             H4    H5
///            /  \  /  \
///          H6  r7 H7   r8
///         /|\     /|\
///       r1 r2 r3 r4 r5 r6
/// ```
///
/// `H1`, `H4`, `H5`, `H6`, `H7` are branching nodes; `H2`, `H3` are the
/// pass-through routers the paper points at ("H3 simply forwards the
/// packets in unicast"). The same graph serves the REUNITE side of the
/// figure (routers there are called `R1..R7`; labels here use `H`).
pub fn fig1() -> Graph {
    let mut g = Graph::new();
    let s = g.add_router_labeled("S");
    let h: Vec<_> = (1..=7)
        .map(|i| g.add_router_labeled(&format!("H{i}")))
        .collect();
    let link = |g: &mut Graph, a, b| g.add_link(a, b, 1, 1);
    link(&mut g, s, h[0]); // S  - H1
    link(&mut g, h[0], h[1]); // H1 - H2
    link(&mut g, h[0], h[2]); // H1 - H3
    link(&mut g, h[1], h[3]); // H2 - H4
    link(&mut g, h[2], h[4]); // H3 - H5
    link(&mut g, h[3], h[5]); // H4 - H6
    link(&mut g, h[4], h[6]); // H5 - H7
    for (i, attach) in [
        (1, h[5]),
        (2, h[5]),
        (3, h[5]),
        (4, h[6]),
        (5, h[6]),
        (6, h[6]),
    ] {
        g.add_host_labeled(attach, 1, 1, &format!("r{i}"));
    }
    g.add_host_labeled(h[3], 1, 1, "r7");
    g.add_host_labeled(h[4], 1, 1, "r8");
    g
}

/// Figures 2 and 5: the 4-router asymmetric scenario where REUNITE fails to
/// build a shortest-path tree and HBH succeeds.
///
/// Forced unicast routes (paper §2.3):
///
/// * `r1 → R2 → R1 → S`  and  `S → R1 → R3 → r1`  (asymmetric for r1);
/// * `r2 → R3 → R1 → S`  and  `S → R4 → r2`       (asymmetric for r2;
///   the REUNITE data branch `R3 → r2` costs 3, so the pinned path
///   `S → R1 → R3 → r2` has delay 5 against the shortest-path delay 2);
/// * `r3 → R3 → R1 → S`  and  `S → R1 → R3 → r3`  (symmetric; r3 is the
///   third receiver of the Figure 5 HBH walk-through).
///
/// The HBH walk-through names the routers `H1..H4`; this graph labels them
/// `R1..R4` and the scenario code maps the names.
pub fn fig2() -> Graph {
    let mut g = Graph::new();
    let s = g.add_router_labeled("S");
    let r1 = g.add_router_labeled("R1");
    let r2 = g.add_router_labeled("R2");
    let r3 = g.add_router_labeled("R3");
    let r4 = g.add_router_labeled("R4");
    // Backbone links, directed costs chosen per the route table above.
    g.add_link(s, r1, 1, 1); //   S→R1 = 1 (down), R1→S = 1 (up)
    g.add_link(s, r4, 1, BLOCK); // S→R4 = 1 (down to r2); R4→S blocked
    g.add_link(r1, r2, BLOCK, 1); // R1→R2 blocked; R2→R1 = 1 (r1's up path)
    g.add_link(r1, r3, 1, 1); //  R1→R3 = 1 (down); R3→R1 = 1 (r2/r3 up)
                              // Receivers.
    let rx1 = g.add_host_labeled(r2, BLOCK, 1, "r1"); // r1→R2 = 1; R2→r1 blocked
    g.add_link_host_side(rx1, r3, 1, BLOCK); // R3→r1 = 1 (down); r1→R3 blocked
    let _rx2 = {
        let rx2 = g.add_host_labeled(r3, 3, 1, "r2"); // R3→r2 = 3 (non-SPT data path, cheaper than detouring back through S); r2→R3 = 1
        g.add_link_host_side(rx2, r4, 1, BLOCK); // R4→r2 = 1 (down); r2→R4 blocked
        rx2
    };
    g.add_host_labeled(r3, 1, 1, "r3");
    g
}

/// Figure 3: the 6-router scenario where REUNITE duplicates packets on link
/// `R1→R6` because the joins of `r1` and `r2` bypass `R6`.
///
/// Forced routes:
///
/// * `r1 → R4 → R2 → R1 → S` (join) and `S → R1 → R6 → R4 → r1` (tree/data);
/// * `r2 → R5 → R3 → R1 → S` (join) and `S → R1 → R6 → R5 → r2` (tree/data).
///
/// Both downstream routes share `R1→R6`, but `R6` never sees a join, so
/// REUNITE cannot elect it as a branching node; HBH fixes it with a
/// `fusion` from `R6` (labelled `H6` in the paper's prose).
pub fn fig3() -> Graph {
    let mut g = Graph::new();
    let s = g.add_router_labeled("S");
    let r: Vec<_> = (1..=6)
        .map(|i| g.add_router_labeled(&format!("R{i}")))
        .collect();
    let (r1, r2, r3, r4, r5, r6) = (r[0], r[1], r[2], r[3], r[4], r[5]);
    g.add_link(s, r1, 1, 1);
    g.add_link(r1, r2, BLOCK, 1); // up leg of r1's join
    g.add_link(r1, r3, BLOCK, 1); // up leg of r2's join
    g.add_link(r1, r6, 1, BLOCK); // shared downstream link R1→R6
    g.add_link(r2, r4, BLOCK, 1);
    g.add_link(r3, r5, BLOCK, 1);
    g.add_link(r6, r4, 1, BLOCK);
    g.add_link(r6, r5, 1, BLOCK);
    let rx1 = g.add_host_labeled(r4, 1, 1, "r1");
    let rx2 = g.add_host_labeled(r5, 1, 1, "r2");
    let _ = (rx1, rx2);
    g
}

impl Graph {
    /// Scenario-only helper: adds a second link from an *already attached*
    /// host, used by [`fig2`] where the paper draws `r1` and `r2` with two
    /// upstream routers (one per direction of its asymmetric route).
    ///
    /// This deliberately bypasses the single-homing invariant — the paper's
    /// figures do attach these receivers to two routers — and is only
    /// available inside this crate's scenario builders.
    fn add_link_host_side(
        &mut self,
        host: crate::graph::NodeId,
        router: crate::graph::NodeId,
        down: u32,
        up: u32,
    ) {
        // Host already has its first link; push the raw half-links directly.
        self.push_raw_link(router, host, down, up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_structure() {
        let g = fig1();
        assert_eq!(g.routers().count(), 8); // S + H1..H7
        assert_eq!(g.hosts().count(), 8); // r1..r8
        for l in ["S", "H1", "H7", "r1", "r8"] {
            assert!(g.node_by_label(l).is_some(), "missing {l}");
        }
    }

    #[test]
    fn fig1_costs_are_symmetric_unit() {
        let g = fig1();
        for (_, _, ab, ba) in g.undirected_links() {
            assert_eq!((ab, ba), (1, 1));
        }
    }

    #[test]
    fn fig1_branching_router_degrees() {
        let g = fig1();
        let h1 = g.node_by_label("H1").unwrap();
        let h2 = g.node_by_label("H2").unwrap();
        assert_eq!(g.degree(h1), 3); // S, H2, H3
        assert_eq!(g.degree(h2), 2); // pass-through
    }

    #[test]
    fn fig2_structure() {
        let g = fig2();
        assert_eq!(g.routers().count(), 5);
        assert_eq!(g.hosts().count(), 3);
        // r1 and r2 are dual-attached per the paper's drawing.
        let r1 = g.node_by_label("r1").unwrap();
        let r2 = g.node_by_label("r2").unwrap();
        let r3 = g.node_by_label("r3").unwrap();
        assert_eq!(g.degree(r1), 2);
        assert_eq!(g.degree(r2), 2);
        assert_eq!(g.degree(r3), 1);
    }

    #[test]
    fn fig2_directed_costs_encode_asymmetry() {
        let g = fig2();
        let s = g.node_by_label("S").unwrap();
        let r4 = g.node_by_label("R4").unwrap();
        assert_eq!(g.cost(s, r4), Some(1)); // S→R4 on r2's SPT
        assert_eq!(g.cost(r4, s), Some(BLOCK)); // blocked reverse
    }

    #[test]
    fn fig3_structure() {
        let g = fig3();
        assert_eq!(g.routers().count(), 7);
        assert_eq!(g.hosts().count(), 2);
        let r1 = g.node_by_label("R1").unwrap();
        let r6 = g.node_by_label("R6").unwrap();
        assert_eq!(g.cost(r1, r6), Some(1));
        assert_eq!(g.cost(r6, r1), Some(BLOCK));
    }

    #[test]
    fn scenario_graphs_are_connected() {
        for g in [fig1(), fig2(), fig3()] {
            assert!(crate::analysis::is_connected(&g));
        }
    }
}
